//! Deterministic randomness for simulations.
//!
//! Every stochastic element of the fabric model (latency jitter, workload
//! inter-arrival times, payload sizes) draws from a [`SimRng`] seeded by
//! the experiment runner, so a run is exactly reproducible from its seed.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// A seeded random source with the distributions the fabric model needs.
#[derive(Debug, Clone)]
pub struct SimRng {
    inner: SmallRng,
}

impl SimRng {
    /// Seeded construction; the same seed yields the same stream.
    pub fn seeded(seed: u64) -> Self {
        SimRng { inner: SmallRng::seed_from_u64(seed) }
    }

    /// Derive an independent child stream (for per-client RNGs) that is
    /// still fully determined by the parent seed.
    pub fn fork(&mut self) -> SimRng {
        SimRng::seeded(self.inner.gen())
    }

    /// Uniform in `[lo, hi)`.
    pub fn uniform(&mut self, lo: f64, hi: f64) -> f64 {
        if hi <= lo {
            return lo;
        }
        self.inner.gen_range(lo..hi)
    }

    /// Uniform integer in `[0, n)`. Panics if `n == 0`.
    pub fn index(&mut self, n: usize) -> usize {
        self.inner.gen_range(0..n)
    }

    /// Bernoulli trial with probability `p` (clamped to \[0,1\]).
    pub fn chance(&mut self, p: f64) -> bool {
        self.inner.gen::<f64>() < p.clamp(0.0, 1.0)
    }

    /// Exponential with the given mean (inter-arrival times of Poisson
    /// event streams; §III Table I workloads are open arrival processes).
    pub fn exponential(&mut self, mean: f64) -> f64 {
        let u: f64 = self.inner.gen_range(f64::EPSILON..1.0);
        -mean * u.ln()
    }

    /// Normal via Box–Muller, clipped below at `min`.
    pub fn normal_clipped(&mut self, mean: f64, std_dev: f64, min: f64) -> f64 {
        let u1: f64 = self.inner.gen_range(f64::EPSILON..1.0);
        let u2: f64 = self.inner.gen();
        let z = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
        (mean + std_dev * z).max(min)
    }

    /// Log-normal parameterized by the *target* median and a multiplicative
    /// sigma; used for heavy-tailed service times.
    pub fn lognormal(&mut self, median: f64, sigma: f64) -> f64 {
        let n = self.normal_clipped(0.0, 1.0, f64::NEG_INFINITY);
        median * (sigma * n).exp()
    }

    /// A raw u64.
    pub fn next_u64(&mut self) -> u64 {
        self.inner.gen()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = SimRng::seeded(42);
        let mut b = SimRng::seeded(42);
        for _ in 0..1000 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn forked_streams_are_deterministic_but_distinct() {
        let mut parent1 = SimRng::seeded(7);
        let mut parent2 = SimRng::seeded(7);
        let mut c1 = parent1.fork();
        let mut c2 = parent2.fork();
        assert_eq!(c1.next_u64(), c2.next_u64()); // reproducible
        let mut sibling = parent1.fork();
        assert_ne!(c1.next_u64(), sibling.next_u64()); // independent
    }

    #[test]
    fn exponential_mean_converges() {
        let mut rng = SimRng::seeded(1);
        let n = 200_000;
        let sum: f64 = (0..n).map(|_| rng.exponential(5.0)).sum();
        let mean = sum / n as f64;
        assert!((mean - 5.0).abs() < 0.1, "mean {mean}");
    }

    #[test]
    fn normal_clipped_respects_floor() {
        let mut rng = SimRng::seeded(2);
        for _ in 0..10_000 {
            assert!(rng.normal_clipped(0.0, 10.0, 0.5) >= 0.5);
        }
    }

    #[test]
    fn uniform_bounds() {
        let mut rng = SimRng::seeded(3);
        for _ in 0..10_000 {
            let x = rng.uniform(2.0, 3.0);
            assert!((2.0..3.0).contains(&x));
        }
        assert_eq!(rng.uniform(4.0, 4.0), 4.0); // degenerate range
    }

    #[test]
    fn chance_extremes() {
        let mut rng = SimRng::seeded(4);
        assert!(!rng.chance(0.0));
        assert!(rng.chance(1.0));
        assert!(rng.chance(2.0)); // clamped
    }

    #[test]
    fn lognormal_median_approx() {
        let mut rng = SimRng::seeded(5);
        let mut xs: Vec<f64> = (0..100_001).map(|_| rng.lognormal(10.0, 0.5)).collect();
        xs.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let med = xs[xs.len() / 2];
        assert!((med - 10.0).abs() < 0.5, "median {med}");
    }
}
