//! MirrorMaker-style cross-cluster topic replication.
//!
//! "Topics may be replicated and synchronized by using the Kafka
//! MirrorMaker tool" (§IV-F) — the mechanism behind cross-region
//! fault tolerance. [`MirrorMaker`] incrementally copies new records
//! from a source cluster's topic to a destination cluster, preserving
//! order per partition, and can run as a background thread.

use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use octopus_types::obs::Stage;
use octopus_types::retry::RetryMetrics;
use octopus_types::{OctoResult, PartitionId, Retrier, RetryPolicy, TopicName};

use crate::cluster::{AckLevel, Cluster};
use crate::eos::ProducerIdentity;
use crate::record::{ProducerStamp, RecordBatch};

/// Incremental topic mirror between two clusters.
pub struct MirrorMaker {
    source: Cluster,
    destination: Cluster,
    topics: Vec<TopicName>,
    /// Next source offset to copy, per (topic, partition).
    positions: HashMap<(TopicName, PartitionId), u64>,
    /// Max records copied per partition per pass.
    batch_size: usize,
    /// Retry/breaker stack for destination writes: a cross-region link
    /// blips far more often than it dies, so one failed produce should
    /// not abort the whole pass.
    retrier: Retrier,
    /// Idempotent identity per mirrored topic (`mirror-<topic>`),
    /// registered against the destination. Cross-region retries after
    /// an ambiguous ack are the classic duplicate generator; stamping
    /// lets the destination dedup them.
    identities: HashMap<TopicName, ProducerIdentity>,
    /// Next destination sequence per (topic, destination partition).
    /// Advanced only on confirmed copies, so a failed pass re-sends the
    /// same records under the same sequence.
    seqs: HashMap<(TopicName, PartitionId), u64>,
}

impl MirrorMaker {
    /// Mirror `topics` from `source` to `destination`. Destination
    /// topics are created on demand with the source's configuration.
    pub fn new(source: Cluster, destination: Cluster, topics: Vec<TopicName>) -> Self {
        // Mirror latency and retries record into the *source* cluster's
        // registry: the mirror is logically part of the source region's
        // egress pipeline.
        let retrier = Retrier::new(RetryPolicy::new(3, Duration::from_millis(5)))
            .with_metrics(RetryMetrics::from_registry(source.metrics(), "octopus_mirror"));
        MirrorMaker {
            source,
            destination,
            topics,
            positions: HashMap::new(),
            batch_size: 1000,
            retrier,
            identities: HashMap::new(),
            seqs: HashMap::new(),
        }
    }

    /// Replace the destination-write retry policy.
    pub fn with_retry_policy(mut self, policy: RetryPolicy) -> Self {
        self.retrier = Retrier::new(policy);
        self
    }

    /// Run one mirroring pass; returns the number of records copied.
    pub fn run_once(&mut self) -> OctoResult<usize> {
        let mut copied = 0usize;
        for topic in self.topics.clone() {
            if !self.source.topic_exists(&topic) {
                continue;
            }
            if !self.destination.topic_exists(&topic) {
                let mut cfg = self.source.topic_config(&topic)?;
                // replication factor may exceed the destination's size
                cfg.replication_factor =
                    cfg.replication_factor.min(self.destination.broker_count() as u32);
                cfg.min_insync_replicas = cfg.min_insync_replicas.min(cfg.replication_factor);
                self.destination.create_topic(&topic, cfg)?;
            }
            let parts = self.source.partition_count(&topic)?;
            for p in 0..parts {
                let pos = self
                    .positions
                    .entry((topic.clone(), p))
                    .or_insert_with(|| self.source.earliest_offset(&topic, p).unwrap_or(0));
                let records = self.source.fetch(&topic, p, *pos, self.batch_size)?;
                if records.is_empty() {
                    continue;
                }
                let events = records.iter().map(|r| r.to_event()).collect::<Vec<_>>();
                let next = records.last().expect("non-empty").offset + 1;
                let dest_partition = p % self.destination.partition_count(&topic)?;
                let identity = match self.identities.get(&topic) {
                    Some(id) => *id,
                    None => {
                        let id =
                            self.destination.register_producer(&format!("mirror-{topic}"))?;
                        self.identities.insert(topic.clone(), id);
                        id
                    }
                };
                let seq =
                    *self.seqs.get(&(topic.clone(), dest_partition)).unwrap_or(&0);
                let count = records.len() as u64;
                let batch = RecordBatch::new(events).with_producer(
                    ProducerStamp { pid: identity.pid, epoch: identity.epoch, seq },
                    false,
                );
                let copy_start = Instant::now();
                self.retrier.call(|_attempt| {
                    self.destination.produce_batch(
                        &topic,
                        dest_partition,
                        batch.clone(),
                        AckLevel::Leader,
                    )
                })?;
                self.source
                    .stage_metrics()
                    .record(Stage::MirrorCopy, copy_start.elapsed().as_nanos() as u64);
                self.seqs.insert((topic.clone(), dest_partition), seq + count);
                *pos = next;
                copied += records.len();
            }
        }
        Ok(copied)
    }

    /// Spawn a background mirroring thread polling at `interval`.
    /// Returns a handle that stops the thread when dropped or stopped.
    pub fn start(mut self, interval: Duration) -> MirrorHandle {
        let stop = Arc::new(AtomicBool::new(false));
        let stop2 = stop.clone();
        let join = std::thread::spawn(move || {
            while !stop2.load(Ordering::Acquire) {
                let _ = self.run_once();
                std::thread::park_timeout(interval);
            }
        });
        MirrorHandle { stop, join: Some(join) }
    }
}

/// Handle to a running background mirror.
pub struct MirrorHandle {
    stop: Arc<AtomicBool>,
    join: Option<std::thread::JoinHandle<()>>,
}

impl MirrorHandle {
    /// Stop the mirror and wait for the thread to exit.
    pub fn stop(mut self) {
        self.shutdown();
    }

    fn shutdown(&mut self) {
        self.stop.store(true, Ordering::Release);
        if let Some(j) = self.join.take() {
            j.thread().unpark();
            let _ = j.join();
        }
    }
}

impl Drop for MirrorHandle {
    fn drop(&mut self) {
        self.shutdown();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::TopicConfig;
    use octopus_types::Event;

    fn ev(s: &str) -> Event {
        Event::from_bytes(s.as_bytes().to_vec())
    }

    #[test]
    fn mirrors_existing_and_new_records() {
        let src = Cluster::new(2);
        let dst = Cluster::new(2);
        src.create_topic("t", TopicConfig::default().with_partitions(2)).unwrap();
        for i in 0..10 {
            src.produce("t", ev(&format!("{i}")), AckLevel::Leader).unwrap();
        }
        let mut mm = MirrorMaker::new(src.clone(), dst.clone(), vec!["t".into()]);
        assert_eq!(mm.run_once().unwrap(), 10);
        // destination topic auto-created, all records present
        let total: usize = (0..2)
            .map(|p| dst.fetch("t", p, 0, 100).unwrap().len())
            .sum();
        assert_eq!(total, 10);
        // incremental: nothing new copies nothing
        assert_eq!(mm.run_once().unwrap(), 0);
        src.produce("t", ev("new"), AckLevel::Leader).unwrap();
        assert_eq!(mm.run_once().unwrap(), 1);
        // copy passes land in the source registry's mirror-copy stage
        let snap = src.metrics().snapshot();
        assert!(snap.histograms["octopus_stage_mirror_copy_ns"].count() >= 2);
    }

    #[test]
    fn preserves_per_partition_order() {
        let src = Cluster::new(1);
        let dst = Cluster::new(1);
        src.create_topic("t", TopicConfig::default().with_partitions(1).with_replication(1).with_min_insync(1)).unwrap();
        for i in 0..20 {
            src.produce_batch("t", 0, RecordBatch::new(vec![ev(&format!("{i:03}"))]), AckLevel::Leader).unwrap();
        }
        let mut mm = MirrorMaker::new(src, dst.clone(), vec!["t".into()]);
        mm.run_once().unwrap();
        let recs = dst.fetch("t", 0, 0, 100).unwrap();
        let values: Vec<String> =
            recs.iter().map(|r| String::from_utf8_lossy(&r.value).into_owned()).collect();
        let mut sorted = values.clone();
        sorted.sort();
        assert_eq!(values, sorted, "order preserved");
    }

    #[test]
    fn shrinks_replication_for_smaller_destination() {
        let src = Cluster::new(4);
        let dst = Cluster::new(1);
        src.create_topic("t", TopicConfig::default().with_replication(4).with_partitions(1)).unwrap();
        src.produce_batch("t", 0, RecordBatch::new(vec![ev("x")]), AckLevel::Leader).unwrap();
        let mut mm = MirrorMaker::new(src, dst.clone(), vec!["t".into()]);
        assert_eq!(mm.run_once().unwrap(), 1);
        assert_eq!(dst.topic_config("t").unwrap().replication_factor, 1);
    }

    #[test]
    fn ambiguous_destination_acks_do_not_duplicate_mirrored_records() {
        let src = Cluster::new(1);
        let dst = Cluster::new(1);
        src.create_topic(
            "t",
            TopicConfig::default().with_partitions(1).with_replication(1).with_min_insync(1),
        )
        .unwrap();
        for i in 0..5 {
            src.produce_batch("t", 0, RecordBatch::new(vec![ev(&format!("{i}"))]), AckLevel::Leader)
                .unwrap();
        }
        let mut mm = MirrorMaker::new(src.clone(), dst.clone(), vec!["t".into()]);
        assert_eq!(mm.run_once().unwrap(), 5);
        // the cross-region ack for the next copy is lost after the
        // append; the mirror's retry re-sends the same stamped batch
        let leader = dst.leader_broker("t", 0).unwrap();
        dst.fault_injector().inject_ack_drop(leader, 1);
        src.produce_batch("t", 0, RecordBatch::new(vec![ev("r")]), AckLevel::Leader).unwrap();
        assert_eq!(mm.run_once().unwrap(), 1);
        let recs = dst.fetch("t", 0, 0, 100).unwrap();
        assert_eq!(recs.len(), 6, "destination deduplicated the retried copy");
        // and the stamp is the mirror's own identity, not a passthrough
        assert!(recs.iter().all(|r| r.eos.is_some()));
    }

    #[test]
    fn missing_source_topic_is_skipped() {
        let src = Cluster::new(1);
        let dst = Cluster::new(1);
        let mut mm = MirrorMaker::new(src, dst, vec!["ghost".into()]);
        assert_eq!(mm.run_once().unwrap(), 0);
    }

    #[test]
    fn background_mirror_runs_and_stops() {
        let src = Cluster::new(1);
        let dst = Cluster::new(1);
        src.create_topic(
            "t",
            TopicConfig::default().with_partitions(1).with_replication(1).with_min_insync(1),
        )
        .unwrap();
        src.produce_batch("t", 0, RecordBatch::new(vec![ev("a")]), AckLevel::Leader).unwrap();
        let mm = MirrorMaker::new(src, dst.clone(), vec!["t".into()]);
        let handle = mm.start(Duration::from_millis(5));
        // wait for the record to land
        let deadline = std::time::Instant::now() + Duration::from_secs(5);
        loop {
            if dst.topic_exists("t") && dst.fetch("t", 0, 0, 10).map(|r| r.len()).unwrap_or(0) == 1
            {
                break;
            }
            assert!(std::time::Instant::now() < deadline, "mirror did not catch up");
            std::thread::sleep(Duration::from_millis(2));
        }
        handle.stop();
    }
}
