//! A Globus-Auth-style OAuth2 authorization server.
//!
//! The paper's rationale for Globus Auth (§IV-C): standards-compliant
//! OAuth 2.0, a wide range of research identity providers, a *delegation*
//! model (dependent tokens) via which services call other services on a
//! user's behalf, and ubiquity across science services. This module
//! reproduces those mechanics:
//!
//! - **Identity providers** are registered by name; users authenticate
//!   against one to obtain identities like `alice@uchicago.edu`.
//! - **Clients** (applications and *resource servers* such as the
//!   Octopus Web Service) register and declare scopes.
//! - **Login** issues access + refresh token pairs for requested scopes.
//! - **Dependent tokens** let a resource server exchange a token it
//!   received for a downstream token to another service (e.g. OWS
//!   calling the transfer service on behalf of the user).

use std::collections::HashMap;
use std::sync::Arc;
use std::time::Duration;

use parking_lot::RwLock;
use rand::RngCore;
use serde::{Deserialize, Serialize};

use octopus_types::{Clock, OctoError, OctoResult, Uid, WallClock};
#[cfg(test)]
use octopus_types::Timestamp;

use crate::sha::{hex, sha256};
use crate::token::{AccessToken, Scope, TokenInfo, TokenStatus};

/// A federated identity provider (e.g. a campus login).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct IdentityProvider {
    /// Domain suffix of identities this provider vouches for
    /// (e.g. `uchicago.edu`).
    pub domain: String,
    /// Display name.
    pub display_name: String,
}

/// A registered OAuth client (app or resource server).
#[derive(Debug, Clone)]
pub struct ClientRegistration {
    /// Client id.
    pub id: Uid,
    /// Client display name.
    pub name: String,
    /// Client secret (confidential clients).
    pub secret: String,
    /// Scopes this client may request *as a resource server* from
    /// dependent-token grants.
    pub allowed_dependent_scopes: Vec<Scope>,
}

#[derive(Debug, Clone)]
struct UserRecord {
    identity: Uid,
    username: String,
    password_hash: [u8; 32],
}

#[derive(Debug, Clone)]
struct IssuedToken {
    info: TokenInfo,
    refresh: Option<String>,
}

struct Inner {
    providers: HashMap<String, IdentityProvider>,
    users: HashMap<String, UserRecord>,
    clients: HashMap<Uid, ClientRegistration>,
    tokens: HashMap<String, IssuedToken>,
    refresh_index: HashMap<String, String>, // refresh token -> access token string
    token_ttl: Duration,
}

/// The authorization server. Cheap to clone (shared state).
#[derive(Clone)]
pub struct AuthServer {
    inner: Arc<RwLock<Inner>>,
    clock: Arc<dyn Clock>,
    rng: Arc<parking_lot::Mutex<rand::rngs::StdRng>>,
}

impl AuthServer {
    /// Server with the real wall clock and a 48-hour token TTL (Globus
    /// Auth's default access token lifetime order of magnitude).
    pub fn new() -> Self {
        Self::with_clock(Arc::new(WallClock))
    }

    /// Server with an injected clock (tests, simulation).
    pub fn with_clock(clock: Arc<dyn Clock>) -> Self {
        use rand::SeedableRng;
        AuthServer {
            inner: Arc::new(RwLock::new(Inner {
                providers: HashMap::new(),
                users: HashMap::new(),
                clients: HashMap::new(),
                tokens: HashMap::new(),
                refresh_index: HashMap::new(),
                token_ttl: Duration::from_secs(48 * 3600),
            })),
            clock,
            rng: Arc::new(parking_lot::Mutex::new(rand::rngs::StdRng::from_entropy())),
        }
    }

    /// Override the access-token TTL.
    pub fn set_token_ttl(&self, ttl: Duration) {
        self.inner.write().token_ttl = ttl;
    }

    fn random_secret(&self, prefix: &str) -> String {
        let mut bytes = [0u8; 32];
        self.rng.lock().fill_bytes(&mut bytes);
        format!("{prefix}_{}", hex(&bytes))
    }

    /// Register an identity provider.
    pub fn register_provider(&self, domain: &str, display_name: &str) {
        self.inner.write().providers.insert(
            domain.to_string(),
            IdentityProvider { domain: domain.to_string(), display_name: display_name.to_string() },
        );
    }

    /// Register a user under a provider; `username` must end with
    /// `@<provider-domain>` of a registered provider.
    pub fn register_user(&self, username: &str, password: &str) -> OctoResult<Uid> {
        let domain = username
            .rsplit_once('@')
            .map(|(_, d)| d.to_string())
            .ok_or_else(|| OctoError::Invalid(format!("username `{username}` has no domain")))?;
        let mut inner = self.inner.write();
        if !inner.providers.contains_key(&domain) {
            return Err(OctoError::Invalid(format!("unknown identity provider: {domain}")));
        }
        if inner.users.contains_key(username) {
            return Err(OctoError::Conflict(format!("user exists: {username}")));
        }
        let identity = Uid::fresh();
        inner.users.insert(
            username.to_string(),
            UserRecord { identity, username: username.to_string(), password_hash: sha256(password.as_bytes()) },
        );
        Ok(identity)
    }

    /// Register a client application / resource server.
    pub fn register_client(
        &self,
        name: &str,
        allowed_dependent_scopes: Vec<Scope>,
    ) -> ClientRegistration {
        let reg = ClientRegistration {
            id: Uid::fresh(),
            name: name.to_string(),
            secret: self.random_secret("cs"),
            allowed_dependent_scopes,
        };
        self.inner.write().clients.insert(reg.id, reg.clone());
        reg
    }

    /// Authenticate a user and issue an access + refresh token pair for
    /// the requested scopes (the SDK login-manager flow).
    pub fn login(
        &self,
        username: &str,
        password: &str,
        client: Uid,
        scopes: Vec<Scope>,
    ) -> OctoResult<(AccessToken, String, TokenInfo)> {
        let now = self.clock.now();
        let mut inner = self.inner.write();
        if !inner.clients.contains_key(&client) {
            return Err(OctoError::Unauthenticated("unknown client".into()));
        }
        let user = inner
            .users
            .get(username)
            .ok_or_else(|| OctoError::Unauthenticated("unknown identity".into()))?
            .clone();
        if !crate::sha::ct_eq(&user.password_hash, &sha256(password.as_bytes())) {
            return Err(OctoError::Unauthenticated("bad credentials".into()));
        }
        let info = TokenInfo {
            identity: user.identity,
            username: user.username.clone(),
            client,
            scopes,
            expires_at: now.plus(inner.token_ttl),
            delegated: false,
            revoked: false,
        };
        Ok(self.issue_locked(&mut inner, info, true))
    }

    fn issue_locked(
        &self,
        inner: &mut Inner,
        info: TokenInfo,
        with_refresh: bool,
    ) -> (AccessToken, String, TokenInfo) {
        let access = self.random_secret("at");
        let refresh = if with_refresh { self.random_secret("rt") } else { String::new() };
        if with_refresh {
            inner.refresh_index.insert(refresh.clone(), access.clone());
        }
        inner.tokens.insert(
            access.clone(),
            IssuedToken { info: info.clone(), refresh: with_refresh.then(|| refresh.clone()) },
        );
        (AccessToken(access), refresh, info)
    }

    /// Introspect a token (resource servers call this to validate
    /// incoming bearer tokens).
    pub fn introspect(&self, token: &AccessToken) -> (TokenStatus, Option<TokenInfo>) {
        let inner = self.inner.read();
        match inner.tokens.get(token.as_str()) {
            None => (TokenStatus::Unknown, None),
            Some(t) => (t.info.status(self.clock.now()), Some(t.info.clone())),
        }
    }

    /// Exchange a refresh token for a fresh access token (same identity,
    /// scopes, client). The old access token is revoked.
    pub fn refresh(&self, refresh_token: &str) -> OctoResult<(AccessToken, TokenInfo)> {
        let now = self.clock.now();
        let mut inner = self.inner.write();
        let old_access = inner
            .refresh_index
            .get(refresh_token)
            .cloned()
            .ok_or_else(|| OctoError::Unauthenticated("unknown refresh token".into()))?;
        let old = inner
            .tokens
            .get_mut(&old_access)
            .ok_or_else(|| OctoError::Internal("refresh index desync".into()))?;
        old.info.revoked = true;
        let mut info = old.info.clone();
        info.revoked = false;
        info.expires_at = now.plus(inner.token_ttl);
        let (access, new_refresh, info) = self.issue_locked(&mut inner, info, true);
        // the refresh token rotates too
        inner.refresh_index.remove(refresh_token);
        let _ = new_refresh; // returned via index; callers re-login if lost
        inner.refresh_index.retain(|_, v| v != &old_access);
        Ok((access, info))
    }

    /// Revoke an access token.
    pub fn revoke(&self, token: &AccessToken) {
        if let Some(t) = self.inner.write().tokens.get_mut(token.as_str()) {
            t.info.revoked = true;
        }
    }

    /// Dependent-token grant (the Globus Auth delegation model, §IV-C):
    /// a resource server presents (its client id + secret) and a token it
    /// received, and obtains a *new* token for the same identity with
    /// `downstream_scopes`, allowing it to call another service on the
    /// user's behalf. The requested scopes must be within the resource
    /// server's registered `allowed_dependent_scopes`.
    pub fn dependent_token(
        &self,
        resource_server: Uid,
        resource_server_secret: &str,
        upstream: &AccessToken,
        downstream_scopes: Vec<Scope>,
    ) -> OctoResult<(AccessToken, TokenInfo)> {
        let now = self.clock.now();
        let mut inner = self.inner.write();
        let rs = inner
            .clients
            .get(&resource_server)
            .ok_or_else(|| OctoError::Unauthenticated("unknown resource server".into()))?
            .clone();
        if rs.secret != resource_server_secret {
            return Err(OctoError::Unauthenticated("bad client secret".into()));
        }
        for s in &downstream_scopes {
            if !rs.allowed_dependent_scopes.contains(s) {
                return Err(OctoError::Unauthorized(format!(
                    "client `{}` may not request dependent scope `{s}`",
                    rs.name
                )));
            }
        }
        let up = inner
            .tokens
            .get(upstream.as_str())
            .ok_or_else(|| OctoError::Unauthenticated("unknown upstream token".into()))?;
        if up.info.status(now) != TokenStatus::Active {
            return Err(OctoError::Unauthenticated("upstream token not active".into()));
        }
        let info = TokenInfo {
            identity: up.info.identity,
            username: up.info.username.clone(),
            client: resource_server,
            scopes: downstream_scopes,
            expires_at: now.plus(inner.token_ttl),
            delegated: true,
            revoked: false,
        };
        let (access, _refresh, info) = self.issue_locked(&mut inner, info, false);
        Ok((access, info))
    }

    /// Find the refresh token currently paired with an access token
    /// (used by the SDK token store after rotation).
    pub fn refresh_token_of(&self, token: &AccessToken) -> Option<String> {
        self.inner.read().tokens.get(token.as_str()).and_then(|t| t.refresh.clone())
    }

    /// Number of registered identity providers.
    pub fn provider_count(&self) -> usize {
        self.inner.read().providers.len()
    }
}

impl Default for AuthServer {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use octopus_types::ManualClock;

    fn setup() -> (AuthServer, ManualClock, ClientRegistration, Uid) {
        let clock = ManualClock::new(Timestamp::from_millis(0));
        let srv = AuthServer::with_clock(Arc::new(clock.clone()));
        srv.register_provider("uchicago.edu", "University of Chicago");
        let client = srv.register_client("octopus-sdk", vec![]);
        let uid = srv.register_user("alice@uchicago.edu", "hunter2").unwrap();
        (srv, clock, client, uid)
    }

    #[test]
    fn login_and_introspect() {
        let (srv, _clock, client, uid) = setup();
        let (tok, refresh, info) = srv
            .login("alice@uchicago.edu", "hunter2", client.id, vec![Scope::new("ows:all")])
            .unwrap();
        assert_eq!(info.identity, uid);
        assert!(!refresh.is_empty());
        let (status, got) = srv.introspect(&tok);
        assert_eq!(status, TokenStatus::Active);
        assert_eq!(got.unwrap().username, "alice@uchicago.edu");
    }

    #[test]
    fn wrong_password_rejected() {
        let (srv, _clock, client, _) = setup();
        let err = srv.login("alice@uchicago.edu", "wrong", client.id, vec![]).unwrap_err();
        assert!(matches!(err, OctoError::Unauthenticated(_)));
        let err = srv.login("bob@uchicago.edu", "x", client.id, vec![]).unwrap_err();
        assert!(matches!(err, OctoError::Unauthenticated(_)));
    }

    #[test]
    fn unknown_provider_and_duplicate_user() {
        let (srv, _, _, _) = setup();
        assert!(matches!(
            srv.register_user("eve@nowhere.test", "x"),
            Err(OctoError::Invalid(_))
        ));
        assert!(matches!(
            srv.register_user("alice@uchicago.edu", "x"),
            Err(OctoError::Conflict(_))
        ));
        assert!(matches!(srv.register_user("nodomain", "x"), Err(OctoError::Invalid(_))));
    }

    #[test]
    fn token_expiry_via_clock() {
        let (srv, clock, client, _) = setup();
        srv.set_token_ttl(Duration::from_secs(60));
        let (tok, _, _) =
            srv.login("alice@uchicago.edu", "hunter2", client.id, vec![]).unwrap();
        assert_eq!(srv.introspect(&tok).0, TokenStatus::Active);
        clock.advance(Duration::from_secs(61));
        assert_eq!(srv.introspect(&tok).0, TokenStatus::Expired);
    }

    #[test]
    fn refresh_rotates_and_revokes_old() {
        let (srv, _clock, client, _) = setup();
        let (tok, refresh, _) =
            srv.login("alice@uchicago.edu", "hunter2", client.id, vec![]).unwrap();
        let (tok2, info2) = srv.refresh(&refresh).unwrap();
        assert_ne!(tok, tok2);
        assert!(!info2.revoked);
        assert_eq!(srv.introspect(&tok).0, TokenStatus::Revoked);
        assert_eq!(srv.introspect(&tok2).0, TokenStatus::Active);
        // old refresh token is dead
        assert!(srv.refresh(&refresh).is_err());
        // new one works
        let new_refresh = srv.refresh_token_of(&tok2).unwrap();
        assert!(srv.refresh(&new_refresh).is_ok());
    }

    #[test]
    fn revoke_token() {
        let (srv, _clock, client, _) = setup();
        let (tok, _, _) = srv.login("alice@uchicago.edu", "hunter2", client.id, vec![]).unwrap();
        srv.revoke(&tok);
        assert_eq!(srv.introspect(&tok).0, TokenStatus::Revoked);
    }

    #[test]
    fn unknown_token_is_unknown() {
        let (srv, _, _, _) = setup();
        assert_eq!(srv.introspect(&AccessToken("at_bogus".into())).0, TokenStatus::Unknown);
    }

    #[test]
    fn dependent_token_delegation() {
        let (srv, _clock, sdk, uid) = setup();
        let transfer_scope = Scope::new("transfer:all");
        let ows = srv.register_client("octopus-ows", vec![transfer_scope.clone()]);
        let (user_tok, _, _) = srv
            .login("alice@uchicago.edu", "hunter2", sdk.id, vec![Scope::new("ows:all")])
            .unwrap();
        // OWS exchanges the user's token for a transfer-service token
        let (dep, dep_info) = srv
            .dependent_token(ows.id, &ows.secret, &user_tok, vec![transfer_scope.clone()])
            .unwrap();
        assert!(dep_info.delegated);
        assert_eq!(dep_info.identity, uid); // still acts as alice
        assert_eq!(dep_info.client, ows.id);
        assert_eq!(srv.introspect(&dep).0, TokenStatus::Active);
    }

    #[test]
    fn dependent_token_guards() {
        let (srv, clock, sdk, _) = setup();
        let ows = srv.register_client("octopus-ows", vec![Scope::new("transfer:all")]);
        let (user_tok, _, _) =
            srv.login("alice@uchicago.edu", "hunter2", sdk.id, vec![]).unwrap();
        // wrong secret
        assert!(matches!(
            srv.dependent_token(ows.id, "nope", &user_tok, vec![]),
            Err(OctoError::Unauthenticated(_))
        ));
        // unallowed scope
        assert!(matches!(
            srv.dependent_token(ows.id, &ows.secret, &user_tok, vec![Scope::new("admin:all")]),
            Err(OctoError::Unauthorized(_))
        ));
        // expired upstream
        srv.set_token_ttl(Duration::from_secs(1));
        let (short_tok, _, _) =
            srv.login("alice@uchicago.edu", "hunter2", sdk.id, vec![]).unwrap();
        clock.advance(Duration::from_secs(2));
        assert!(matches!(
            srv.dependent_token(ows.id, &ows.secret, &short_tok, vec![]),
            Err(OctoError::Unauthenticated(_))
        ));
    }
}
