//! Regenerates **Fig. 7**: Octopus activities for the Scientific Data
//! Automation use case — FS events accumulating in the monitor topic
//! spur trigger invocations that start replication transfers.
//!
//! `cargo run --release -p octopus-bench --bin fig7 [-- minutes]`

use octopus_apps::DataAutomationPipeline;
use octopus_bench::{bar, figure_header, stage_table};
use octopus_broker::Cluster;
use octopus_fsmon::AggregatorConfig;
use octopus_trigger::CostModel;

fn main() {
    let minutes: u64 = std::env::args().nth(1).and_then(|s| s.parse().ok()).unwrap_or(30);
    figure_header(
        "FIG. 7 — Data-automation activity timeline",
        "cumulative FS events (left axis) vs trigger invocations starting transfers",
    );
    let local = Cluster::new(2);
    let cloud = Cluster::new(2);
    // keep handles so the registries can be read after the campaign
    // (Cluster clones share state)
    let (local_obs, cloud_obs) = (local.clone(), cloud.clone());
    let mut pipeline = DataAutomationPipeline::new(local, cloud, 2024).expect("pipeline");
    for minute in 0..minutes {
        pipeline.step(minute * 60_000).expect("step");
    }
    let tl = pipeline.timeline();
    let max_events = tl.last().map(|s| s.monitor_events as f64).unwrap_or(1.0);
    println!(
        "{:>4} {:>10} {:>10} {:>8} {:>9}  fs-events",
        "min", "fs-events", "cloud-ev", "invokes", "transfers"
    );
    for s in tl {
        println!(
            "{:>4} {:>10} {:>10} {:>8} {:>9}  {}",
            s.t_ms / 60_000,
            s.monitor_events,
            s.cloud_events,
            s.trigger_invocations,
            s.transfers,
            bar(s.monitor_events as f64, max_events, 30)
        );
    }
    let last = tl.last().expect("non-empty");
    println!("\nhierarchical reduction: {:.1}x fewer cloud events than raw FS events", pipeline.reduction_factor());
    println!(
        "trigger efficiency: {} transfers from {} invocations (batching)",
        last.transfers, last.trigger_invocations
    );
    println!(
        "§VII-C check — aggregators 'reduce trigger invocations by orders of magnitude': {} raw events -> {} invocations ({:.0}x)",
        last.monitor_events,
        last.trigger_invocations,
        last.monitor_events as f64 / last.trigger_invocations as f64
    );

    // ablation: the same campaign without the hierarchical aggregator
    let mut flat = DataAutomationPipeline::with_aggregation(
        Cluster::new(2),
        Cluster::new(2),
        2024,
        AggregatorConfig::passthrough(),
    )
    .expect("ablation pipeline");
    for minute in 0..minutes {
        flat.step(minute * 60_000).expect("step");
    }
    let flat_last = *flat.timeline().last().expect("non-empty");
    let cost = CostModel::default();
    let invocation_usd = cost.invocation_cost(128, 5_000);
    println!("
ablation — no edge aggregation (AggregatorConfig::passthrough):");
    println!(
        "  cloud events:        {:>8} (vs {} with aggregation, {:.1}x more)",
        flat_last.cloud_events,
        last.cloud_events,
        flat_last.cloud_events as f64 / last.cloud_events.max(1) as f64
    );
    println!(
        "  trigger invocations: {:>8} (vs {})",
        flat_last.trigger_invocations, last.trigger_invocations
    );
    let (agg_in, flat_in) = (pipeline.cloud_stats().bytes_in, flat.cloud_stats().bytes_in);
    println!(
        "  cloud ingress bytes: {:>8} (vs {}, {:.1}x more)",
        flat_in,
        agg_in,
        flat_in as f64 / agg_in.max(1) as f64
    );
    println!(
        "  trigger cost/campaign: ${:.4} without vs ${:.4} with aggregation",
        invocation_usd * flat_last.trigger_invocations as f64,
        invocation_usd * last.trigger_invocations as f64
    );

    println!("\nper-stage breakdown — edge (monitor) cluster:");
    print!("{}", stage_table(&local_obs.metrics().snapshot()));
    println!("\nper-stage breakdown — cloud cluster:");
    print!("{}", stage_table(&cloud_obs.metrics().snapshot()));
}
