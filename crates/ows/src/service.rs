//! The OWS service proper: authentication middleware, route dispatch,
//! and the handlers behind each route.

use std::sync::Arc;

use serde_json::{json, Value};

use octopus_auth::{AclStore, AuthServer, IamService, Permission, Scope, TokenStatus};
use octopus_broker::{CleanupPolicy, Cluster, Compression, TopicConfig};
use octopus_pattern::Pattern;
use octopus_trigger::{AutoscalerConfig, FunctionConfig, TriggerRuntime, TriggerSpec};
use octopus_types::obs::Stage;
use octopus_types::{Clock, OctoError, OctoResult, Uid, WallClock};
use octopus_zoo::{CreateMode, ZooService};

use crate::http::{segments, Method, Request, Response};
use crate::ratelimit::RateLimiter;
use crate::registry::FunctionRegistry;
use crate::OWS_SCOPE;

/// OWS deployment options.
#[derive(Clone, Default)]
pub struct OwsConfig {
    /// Per-identity request rate limit as (requests/sec, burst);
    /// `None` disables limiting.
    pub rate_limit: Option<(f64, f64)>,
}

/// The Octopus Web Service.
#[derive(Clone)]
pub struct OwsService {
    auth: AuthServer,
    iam: IamService,
    acl: AclStore,
    zoo: ZooService,
    cluster: Cluster,
    triggers: TriggerRuntime,
    registry: FunctionRegistry,
    limiter: Option<RateLimiter>,
}

impl OwsService {
    /// Wire the service to its substrates.
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        auth: AuthServer,
        iam: IamService,
        acl: AclStore,
        zoo: ZooService,
        cluster: Cluster,
        triggers: TriggerRuntime,
        registry: FunctionRegistry,
        config: OwsConfig,
    ) -> Self {
        Self::with_clock(auth, iam, acl, zoo, cluster, triggers, registry, config, Arc::new(WallClock))
    }

    /// As [`OwsService::new`] with an injected clock for the limiter.
    #[allow(clippy::too_many_arguments)]
    pub fn with_clock(
        auth: AuthServer,
        iam: IamService,
        acl: AclStore,
        zoo: ZooService,
        cluster: Cluster,
        triggers: TriggerRuntime,
        registry: FunctionRegistry,
        config: OwsConfig,
        clock: Arc<dyn Clock>,
    ) -> Self {
        let limiter =
            config.rate_limit.map(|(rate, burst)| RateLimiter::new(rate, burst, clock));
        OwsService { auth, iam, acl, zoo, cluster, triggers, registry, limiter }
    }

    /// The function registry (register functions before deploying
    /// triggers that reference them).
    pub fn registry(&self) -> &FunctionRegistry {
        &self.registry
    }

    /// The trigger runtime (to poll/start workers in tests and apps).
    pub fn trigger_runtime(&self) -> &TriggerRuntime {
        &self.triggers
    }

    /// The backing cluster.
    pub fn cluster(&self) -> &Cluster {
        &self.cluster
    }

    // ----- middleware -----

    fn authenticate(&self, req: &Request) -> OctoResult<Uid> {
        let token = req
            .bearer
            .as_ref()
            .ok_or_else(|| OctoError::Unauthenticated("missing bearer token".into()))?;
        let (status, info) = self.auth.introspect(token);
        if status != TokenStatus::Active {
            return Err(OctoError::Unauthenticated(format!("token {status:?}")));
        }
        let info = info.expect("active token has info");
        if !info.has_scope(&Scope::new(OWS_SCOPE)) {
            return Err(OctoError::Unauthorized(format!("token lacks scope {OWS_SCOPE}")));
        }
        if let Some(limiter) = &self.limiter {
            limiter.check(info.identity)?;
        }
        Ok(info.identity)
    }

    // ----- dispatch -----

    /// Route a request to its handler.
    pub fn dispatch(&self, req: &Request) -> Response {
        // end-to-end latency of the whole request (auth + handler),
        // recorded into the backing cluster's registry
        self.cluster.stage_metrics().time(Stage::OwsDispatch, || self.dispatch_inner(req))
    }

    fn dispatch_inner(&self, req: &Request) -> Response {
        let identity = match self.authenticate(req) {
            Ok(id) => id,
            Err(e) => return Response::from_error(&e),
        };
        let segs = segments(&req.path);
        // the scrape endpoint is text-typed, not JSON — handled before
        // the JSON-route table (auth + rate limiting already applied)
        if req.method == Method::Get && segs.as_slice() == ["metrics"] {
            return Response::text(self.cluster.metrics().render_text());
        }
        let result: OctoResult<Value> = match (req.method, segs.as_slice()) {
            (Method::Put, ["topic", topic]) => self.register_topic(identity, topic, &req.body),
            (Method::Get, ["topics"]) => self.list_topics(identity),
            (Method::Get, ["topic", topic]) => self.get_topic(identity, topic),
            (Method::Post, ["topic", topic]) => self.set_topic_config(identity, topic, &req.body),
            (Method::Post, ["topic", topic, "partitions"]) => {
                self.set_partitions(identity, topic, &req.body)
            }
            (Method::Post, ["topic", topic, "user"]) => {
                self.topic_user(identity, topic, &req.body)
            }
            (Method::Delete, ["topic", topic]) => self.release_topic(identity, topic),
            (Method::Get, ["create_key"]) => self.create_key(identity),
            (Method::Put, ["trigger"]) => self.deploy_trigger(identity, &req.body),
            (Method::Get, ["triggers"]) => self.list_triggers(identity),
            (Method::Get, ["health"]) => self.health(),
            (Method::Get, ["reassignments"]) => self.reassignments(),
            (Method::Get, ["wire", "slow"]) => self.wire_slow(),
            (Method::Get, ["lag", group]) => self.lag(group),
            (Method::Get, ["store"]) => self.store(),
            _ => Err(OctoError::NotFound(format!("{:?} {}", req.method, req.path))),
        };
        match result {
            Ok(body) => Response::ok(body),
            Err(e) => Response::from_error(&e),
        }
    }

    // ----- handlers -----

    /// `PUT /topic/<topic>`: "Registers a unique topic name with the MSK
    /// cluster and sets READ, WRITE, and DESCRIBE access to the topic
    /// for the user identity."
    fn register_topic(&self, identity: Uid, topic: &str, body: &Value) -> OctoResult<Value> {
        let config = parse_topic_config(body, TopicConfig::default())?;
        // ownership is claimed first (idempotent; conflicts if another
        // identity owns the name)
        self.acl.register_topic(topic, identity)?;
        // record the source of truth in the coordination service
        self.zoo.ensure_path("/octopus/owners")?;
        let owner_path = format!("/octopus/owners/{topic}");
        match self.zoo.create(&owner_path, identity.to_string().as_bytes(), CreateMode::Persistent, None) {
            Ok(_) | Err(OctoError::Conflict(_)) => {}
            Err(e) => return Err(e),
        }
        self.cluster.create_topic(topic, config.clone())?;
        Ok(json!({"topic": topic, "partitions": config.partitions, "replication_factor": config.replication_factor}))
    }

    /// `GET /topics`: "Returns a list of all topics the user is
    /// authorized to describe."
    fn list_topics(&self, identity: Uid) -> OctoResult<Value> {
        Ok(json!({"topics": self.acl.describable_topics(identity)}))
    }

    /// `GET /topic/<topic>`: "Returns a specific topic's configuration."
    fn get_topic(&self, identity: Uid, topic: &str) -> OctoResult<Value> {
        self.acl.check(topic, identity, Permission::Describe)?;
        let cfg = self.cluster.topic_config(topic)?;
        Ok(serde_json::to_value(&cfg)?)
    }

    /// `POST /topic/<topic>`: "Set topic configuration, e.g.,
    /// replication factor and data retention policy."
    fn set_topic_config(&self, identity: Uid, topic: &str, body: &Value) -> OctoResult<Value> {
        self.require_owner(topic, identity)?;
        let current = self.cluster.topic_config(topic)?;
        let config = parse_topic_config(body, current)?;
        self.cluster.update_topic_config(topic, config.clone())?;
        Ok(serde_json::to_value(&config)?)
    }

    /// `POST /topic/<topic>/partitions`: "Set the number of partitions."
    fn set_partitions(&self, identity: Uid, topic: &str, body: &Value) -> OctoResult<Value> {
        self.require_owner(topic, identity)?;
        let n = body["partitions"]
            .as_u64()
            .ok_or_else(|| OctoError::Invalid("body must carry integer `partitions`".into()))?;
        self.cluster.set_partitions(topic, n as u32)?;
        Ok(json!({"topic": topic, "partitions": n}))
    }

    /// `POST /topic/<topic>/user`: "Grant (or revoke) an identity access
    /// to the topic."
    fn topic_user(&self, identity: Uid, topic: &str, body: &Value) -> OctoResult<Value> {
        let grantee = body["identity"]
            .as_str()
            .ok_or_else(|| OctoError::Invalid("body must carry `identity`".into()))
            .and_then(Uid::parse)?;
        let action = body["action"].as_str().unwrap_or("grant");
        let perms: Vec<Permission> = match body["permissions"].as_array() {
            Some(list) => list
                .iter()
                .map(|p| match p.as_str() {
                    Some("read") => Ok(Permission::Read),
                    Some("write") => Ok(Permission::Write),
                    Some("describe") => Ok(Permission::Describe),
                    other => Err(OctoError::Invalid(format!("unknown permission {other:?}"))),
                })
                .collect::<OctoResult<_>>()?,
            None => Permission::ALL.to_vec(),
        };
        match action {
            "grant" => self.acl.grant(topic, identity, grantee, &perms)?,
            "revoke" => self.acl.revoke(topic, identity, grantee, &perms)?,
            other => return Err(OctoError::Invalid(format!("unknown action {other:?}"))),
        }
        Ok(json!({"topic": topic, "identity": grantee.to_string(), "action": action}))
    }

    /// `DELETE /topic/<topic>`: release a topic — §IV-B's "provision,
    /// configure, share, or release topics". Owner-only; removes the
    /// fabric topic, its ACL entry, and the ownership record.
    fn release_topic(&self, identity: Uid, topic: &str) -> OctoResult<Value> {
        self.require_owner(topic, identity)?;
        self.cluster.delete_topic(topic)?;
        self.acl.drop_topic(topic);
        let _ = self.zoo.delete(&format!("/octopus/owners/{topic}"), None);
        Ok(json!({"topic": topic, "released": true}))
    }

    /// `GET /create_key`: "Create an IAM identity for the requesting
    /// user and return an access key and secret."
    fn create_key(&self, identity: Uid) -> OctoResult<Value> {
        let key = self.iam.create_key(identity);
        // register the IAM identity with the coordination service so
        // the mapping survives OWS restarts (§IV-C)
        self.zoo.ensure_path(&format!("/octopus/identities/{identity}/keys"))?;
        self.zoo.create(
            &format!("/octopus/identities/{identity}/keys/{}", key.key_id),
            &[],
            CreateMode::Persistent,
            None,
        )?;
        Ok(json!({"access_key_id": key.key_id, "secret_access_key": key.secret}))
    }

    /// `PUT /trigger/`: "Deploy a trigger using a specified function,
    /// target topic, and configuration."
    fn deploy_trigger(&self, identity: Uid, body: &Value) -> OctoResult<Value> {
        let name = body["name"]
            .as_str()
            .ok_or_else(|| OctoError::Invalid("trigger body must carry `name`".into()))?;
        let topic = body["topic"]
            .as_str()
            .ok_or_else(|| OctoError::Invalid("trigger body must carry `topic`".into()))?;
        let function_name = body["function"]
            .as_str()
            .ok_or_else(|| OctoError::Invalid("trigger body must carry `function`".into()))?;
        // reading from the topic is what the trigger will do on the
        // user's behalf — require READ
        self.acl.check(topic, identity, Permission::Read)?;
        let function = self.registry.get(function_name)?;
        let pattern = match &body["pattern"] {
            Value::Null => None,
            p => Some(Pattern::parse(p).map_err(|e| OctoError::Invalid(e.to_string()))?),
        };
        let mut config = FunctionConfig::default();
        if let Some(b) = body["batch_size"].as_u64() {
            config.batch_size = b as usize;
        }
        if let Some(m) = body["memory_mb"].as_u64() {
            config.memory_mb = m as u32;
        }
        if let Some(t) = body["timeout_ms"].as_u64() {
            config.timeout_ms = t;
        }
        if let Some(r) = body["retries"].as_u64() {
            config.retries = r as u32;
        }
        if let Some(d) = body["dlq_topic"].as_str() {
            config.dlq_topic = Some(d.to_string());
        }
        let spec = TriggerSpec {
            name: name.to_string(),
            topic: topic.to_string(),
            pattern,
            config: config.clamped(),
            function,
            acting_as: identity,
            autoscaler: AutoscalerConfig::default(),
        };
        self.triggers.deploy(spec)?;
        Ok(json!({"trigger": name, "topic": topic, "function": function_name}))
    }

    /// `GET /triggers/`: "Describe existing triggers and their
    /// configuration."
    fn list_triggers(&self, _identity: Uid) -> OctoResult<Value> {
        let list = self.triggers.list();
        Ok(serde_json::to_value(&list)?)
    }

    /// `GET /health`: the cluster health rollup — partition
    /// classification, per-broker status, ISR transition counts, and
    /// the Green/Yellow/Red timeline. Any authenticated identity may
    /// read it (observability is not topic-scoped).
    fn health(&self) -> OctoResult<Value> {
        Ok(serde_json::to_value(self.cluster.health_report())?)
    }

    /// `GET /reassignments`: active and recent partition moves — the
    /// progress surface behind the elastic-scaling drills (phase,
    /// copied vs. target offsets, epochs, failure details).
    fn reassignments(&self) -> OctoResult<Value> {
        Ok(serde_json::to_value(self.cluster.reassignments())?)
    }

    /// `GET /lag/<group>`: consumer-lag report for one group; 404 for a
    /// group that has never committed.
    fn lag(&self, group: &str) -> OctoResult<Value> {
        Ok(serde_json::to_value(self.cluster.lag_report(group)?)?)
    }

    /// `GET /wire/slow`: the wire server's slow-request ring — the
    /// slowest requests per api key, with correlation and trace ids
    /// for cross-referencing exported traces.
    fn wire_slow(&self) -> OctoResult<Value> {
        Ok(serde_json::to_value(self.cluster.slow_ring().snapshot())?)
    }

    /// `GET /store`: the fabric's durability configuration — whether
    /// logs persist, where, under which flush policy, and the offset
    /// checkpoint cadence.
    fn store(&self) -> OctoResult<Value> {
        match self.cluster.durability() {
            Some(info) => Ok(json!({
                "durable": true,
                "data_dir": info.data_dir,
                "flush_policy": serde_json::to_value(info.flush_policy)?,
                "checkpoint_every": info.checkpoint_every,
            })),
            None => Ok(json!({"durable": false})),
        }
    }

    fn require_owner(&self, topic: &str, identity: Uid) -> OctoResult<()> {
        if self.acl.owner(topic)? != identity {
            return Err(OctoError::Unauthorized(format!("not the owner of {topic}")));
        }
        Ok(())
    }
}

/// Merge a JSON body over a base [`TopicConfig`]. Unknown fields are
/// rejected so typos fail loudly. Shared with the wire-backend admin
/// client so both front doors accept the same partial-config bodies.
pub fn parse_topic_config(body: &Value, base: TopicConfig) -> OctoResult<TopicConfig> {
    let mut config = base;
    let Value::Object(map) = body else {
        if body.is_null() {
            return Ok(config);
        }
        return Err(OctoError::Invalid("topic config body must be a JSON object".into()));
    };
    for (k, v) in map {
        match k.as_str() {
            "partitions" => {
                config.partitions = v
                    .as_u64()
                    .ok_or_else(|| OctoError::Invalid("partitions must be an integer".into()))?
                    as u32;
            }
            "replication_factor" => {
                config.replication_factor = v.as_u64().ok_or_else(|| {
                    OctoError::Invalid("replication_factor must be an integer".into())
                })? as u32;
            }
            "min_insync_replicas" => {
                config.min_insync_replicas = v.as_u64().ok_or_else(|| {
                    OctoError::Invalid("min_insync_replicas must be an integer".into())
                })? as u32;
            }
            "retention_ms" => {
                config.retention.retention_ms = v.as_u64();
            }
            "retention_bytes" => {
                config.retention.retention_bytes = v.as_u64();
            }
            "cleanup" => {
                config.cleanup = match v.as_str() {
                    Some("delete") => CleanupPolicy::Delete,
                    Some("compact") => CleanupPolicy::Compact,
                    Some("compact_and_delete") => CleanupPolicy::CompactAndDelete,
                    other => {
                        return Err(OctoError::Invalid(format!("unknown cleanup {other:?}")))
                    }
                };
            }
            "segment_bytes" => {
                config.segment_bytes = v
                    .as_u64()
                    .ok_or_else(|| OctoError::Invalid("segment_bytes must be an integer".into()))?
                    as usize;
            }
            "index_interval_bytes" => {
                config.index_interval_bytes = v.as_u64().ok_or_else(|| {
                    OctoError::Invalid("index_interval_bytes must be an integer".into())
                })?;
            }
            "compression" => {
                config.compression = match v.as_str() {
                    Some("none") => Compression::None,
                    Some("lz4") => Compression::Lz4,
                    other => {
                        return Err(OctoError::Invalid(format!("unknown compression {other:?}")))
                    }
                };
            }
            "cold_after_bytes" => {
                config.cold_after_bytes = if v.is_null() {
                    None
                } else {
                    Some(v.as_u64().ok_or_else(|| {
                        OctoError::Invalid("cold_after_bytes must be an integer or null".into())
                    })?)
                };
            }
            other => return Err(OctoError::Invalid(format!("unknown config field `{other}`"))),
        }
    }
    Ok(config)
}

#[cfg(test)]
mod tests {
    use super::*;
    use octopus_auth::AccessToken;

    /// A fully wired OWS with one registered user; returns the service
    /// and the user's token.
    pub(crate) fn test_ows() -> (OwsService, AccessToken, Uid) {
        test_ows_with(OwsConfig::default())
    }

    pub(crate) fn test_ows_with(config: OwsConfig) -> (OwsService, AccessToken, Uid) {
        let auth = AuthServer::new();
        auth.register_provider("uchicago.edu", "UChicago");
        let client = auth.register_client("octopus-sdk", vec![]);
        let uid = auth.register_user("alice@uchicago.edu", "pw").unwrap();
        let (token, _, _) = auth
            .login("alice@uchicago.edu", "pw", client.id, vec![Scope::new(OWS_SCOPE)])
            .unwrap();
        let acl = AclStore::new();
        let zoo = ZooService::new(1);
        let cluster = Cluster::builder(2).acl(acl.clone()).build();
        let triggers = TriggerRuntime::new(cluster.clone());
        let registry = FunctionRegistry::new();
        registry.register("noop", |_ctx, _batch| Ok(()));
        let ows = OwsService::new(
            auth,
            IamService::new(),
            acl,
            zoo,
            cluster,
            triggers,
            registry,
            config,
        );
        (ows, token, uid)
    }

    fn put(path: &str, token: &AccessToken, body: Value) -> Request {
        Request::new(Method::Put, path).bearer(token.clone()).body(body)
    }

    fn get(path: &str, token: &AccessToken) -> Request {
        Request::new(Method::Get, path).bearer(token.clone())
    }

    fn post(path: &str, token: &AccessToken, body: Value) -> Request {
        Request::new(Method::Post, path).bearer(token.clone()).body(body)
    }

    #[test]
    fn full_topic_lifecycle_via_routes() {
        let (ows, token, _) = test_ows();
        // PUT /topic/t
        let r = ows.dispatch(&put("/topic/t", &token, json!({"partitions": 4})));
        assert_eq!(r.status, 200, "{:?}", r.body);
        assert_eq!(r.body["partitions"], 4);
        // GET /topics
        let r = ows.dispatch(&get("/topics", &token));
        assert_eq!(r.body["topics"], json!(["t"]));
        // GET /topic/t
        let r = ows.dispatch(&get("/topic/t", &token));
        assert_eq!(r.body["partitions"], 4);
        // POST /topic/t (retention update)
        let r = ows.dispatch(&post("/topic/t", &token, json!({"retention_ms": 1000})));
        assert_eq!(r.status, 200);
        assert_eq!(r.body["retention"]["retention_ms"], 1000);
        // POST /topic/t/partitions
        let r = ows.dispatch(&post("/topic/t/partitions", &token, json!({"partitions": 8})));
        assert_eq!(r.status, 200);
        assert_eq!(ows.cluster().partition_count("t").unwrap(), 8);
    }

    #[test]
    fn wire_slow_surfaces_the_slow_request_ring() {
        let (ows, token, _) = test_ows();
        ows.cluster().slow_ring().observe(octopus_types::SlowRequest {
            api: "produce".into(),
            correlation_id: 42,
            trace_id: Some(8),
            total_us: 1_500,
            at_ns: 1,
        });
        let r = ows.dispatch(&get("/wire/slow", &token));
        assert_eq!(r.status, 200, "{:?}", r.body);
        assert_eq!(r.body[0]["api"], "produce");
        assert_eq!(r.body[0]["correlation_id"], 42);
        assert_eq!(r.body[0]["trace_id"], 8);
        // observability routes still require authentication
        assert_eq!(ows.dispatch(&Request::new(Method::Get, "/wire/slow")).status, 401);
    }

    #[test]
    fn requests_without_token_are_401() {
        let (ows, _token, _) = test_ows();
        let r = ows.dispatch(&Request::new(Method::Get, "/topics"));
        assert_eq!(r.status, 401);
        let bogus = AccessToken("at_bogus".into());
        let r = ows.dispatch(&get("/topics", &bogus));
        assert_eq!(r.status, 401);
    }

    #[test]
    fn scope_is_required() {
        let (ows, _token, _) = test_ows();
        // mint a token without the OWS scope
        let auth = ows.auth.clone();
        let client = auth.register_client("other-app", vec![]);
        auth.register_user("bob@uchicago.edu", "pw").unwrap();
        let (token, _, _) = auth.login("bob@uchicago.edu", "pw", client.id, vec![]).unwrap();
        let r = ows.dispatch(&get("/topics", &token));
        assert_eq!(r.status, 403);
    }

    #[test]
    fn unknown_route_is_404() {
        let (ows, token, _) = test_ows();
        let r = ows.dispatch(&get("/nope", &token));
        assert_eq!(r.status, 404);
        let r = ows.dispatch(&Request::new(Method::Delete, "/topic/t").bearer(token));
        assert_eq!(r.status, 404);
    }

    #[test]
    fn create_key_returns_usable_credentials() {
        let (ows, token, uid) = test_ows();
        let r = ows.dispatch(&get("/create_key", &token));
        assert_eq!(r.status, 200);
        let key_id = r.body["access_key_id"].as_str().unwrap();
        assert!(key_id.starts_with("OKIA"));
        assert!(!r.body["secret_access_key"].as_str().unwrap().is_empty());
        // the key is registered in the coordination service
        assert!(ows
            .zoo
            .exists(&format!("/octopus/identities/{uid}/keys/{key_id}"))
            .unwrap());
    }

    #[test]
    fn sharing_via_topic_user_route() {
        let (ows, token, _) = test_ows();
        ows.dispatch(&put("/topic/shared", &token, Value::Null));
        // register bob and grant him read
        let bob = Uid::fresh();
        let r = ows.dispatch(&post(
            "/topic/shared/user",
            &token,
            json!({"identity": bob.to_string(), "permissions": ["read", "describe"]}),
        ));
        assert_eq!(r.status, 200, "{:?}", r.body);
        ows.acl.check("shared", bob, Permission::Read).unwrap();
        ows.acl.check("shared", bob, Permission::Describe).unwrap();
        assert!(ows.acl.check("shared", bob, Permission::Write).is_err());
        // revoke
        let r = ows.dispatch(&post(
            "/topic/shared/user",
            &token,
            json!({"identity": bob.to_string(), "permissions": ["read"], "action": "revoke"}),
        ));
        assert_eq!(r.status, 200);
        assert!(ows.acl.check("shared", bob, Permission::Read).is_err());
    }

    #[test]
    fn non_owner_cannot_manage() {
        let (ows, token, _) = test_ows();
        ows.dispatch(&put("/topic/mine", &token, Value::Null));
        // bob gets his own token
        let auth = ows.auth.clone();
        let client = auth.register_client("sdk2", vec![]);
        auth.register_user("bob@uchicago.edu", "pw").unwrap();
        let (bob_token, _, _) = auth
            .login("bob@uchicago.edu", "pw", client.id, vec![Scope::new(OWS_SCOPE)])
            .unwrap();
        let r = ows.dispatch(&post("/topic/mine/partitions", &bob_token, json!({"partitions": 4})));
        assert_eq!(r.status, 403);
        let r = ows.dispatch(&post("/topic/mine", &bob_token, json!({"retention_ms": 1})));
        assert_eq!(r.status, 403);
        // bob cannot even describe it
        let r = ows.dispatch(&get("/topic/mine", &bob_token));
        assert_eq!(r.status, 403);
        // and registering the same name conflicts
        let r = ows.dispatch(&put("/topic/mine", &bob_token, Value::Null));
        assert_eq!(r.status, 409);
    }

    #[test]
    fn trigger_deploy_and_list_via_routes() {
        let (ows, token, _) = test_ows();
        ows.dispatch(&put("/topic/events", &token, Value::Null));
        let r = ows.dispatch(&put(
            "/trigger",
            &token,
            json!({
                "name": "t1",
                "topic": "events",
                "function": "noop",
                "pattern": {"event_type": ["created"]},
                "batch_size": 50
            }),
        ));
        assert_eq!(r.status, 200, "{:?}", r.body);
        let r = ows.dispatch(&get("/triggers", &token));
        assert_eq!(r.status, 200);
        assert_eq!(r.body.as_array().unwrap().len(), 1);
        assert_eq!(r.body[0]["name"], "t1");
        // unknown function
        let r = ows.dispatch(&put(
            "/trigger",
            &token,
            json!({"name": "t2", "topic": "events", "function": "ghost"}),
        ));
        assert_eq!(r.status, 404);
        // bad pattern
        let r = ows.dispatch(&put(
            "/trigger",
            &token,
            json!({"name": "t3", "topic": "events", "function": "noop", "pattern": {"a": "notarray"}}),
        ));
        assert_eq!(r.status, 400);
    }

    #[test]
    fn config_parsing_rejects_unknown_fields() {
        let (ows, token, _) = test_ows();
        let r = ows.dispatch(&put("/topic/t", &token, json!({"partitons": 4})));
        assert_eq!(r.status, 400, "typo'd field must fail loudly");
        let r = ows.dispatch(&put("/topic/t", &token, json!("not an object")));
        assert_eq!(r.status, 400);
        let r = ows.dispatch(&put("/topic/t", &token, json!({"cleanup": "compact"})));
        assert_eq!(r.status, 200);
    }

    #[test]
    fn config_parsing_accepts_storage_knobs() {
        let parsed = parse_topic_config(
            &json!({
                "segment_bytes": 1 << 20,
                "index_interval_bytes": 4096,
                "compression": "lz4",
                "cold_after_bytes": 1 << 22,
            }),
            TopicConfig::default(),
        )
        .unwrap();
        assert_eq!(parsed.segment_bytes, 1 << 20);
        assert_eq!(parsed.index_interval_bytes, 4096);
        assert_eq!(parsed.compression, Compression::Lz4);
        assert_eq!(parsed.cold_after_bytes, Some(1 << 22));
        // null turns tiering back off; "none" turns compression back off
        let parsed = parse_topic_config(
            &json!({"compression": "none", "cold_after_bytes": null}),
            parsed,
        )
        .unwrap();
        assert_eq!(parsed.compression, Compression::None);
        assert_eq!(parsed.cold_after_bytes, None);
        // unknown codec fails loudly
        assert!(parse_topic_config(&json!({"compression": "zstd"}), TopicConfig::default())
            .is_err());
    }

    #[test]
    fn release_topic_route() {
        let (ows, token, _) = test_ows();
        ows.dispatch(&put("/topic/gone", &token, Value::Null));
        let r = ows.dispatch(&Request::new(Method::Delete, "/topic/gone").bearer(token.clone()));
        assert_eq!(r.status, 200, "{:?}", r.body);
        assert!(!ows.cluster().topic_exists("gone"));
        assert!(!ows.acl.topic_exists("gone"));
        assert!(!ows.zoo.exists("/octopus/owners/gone").unwrap());
        // releasing again is 404
        let r = ows.dispatch(&Request::new(Method::Delete, "/topic/gone").bearer(token.clone()));
        assert_eq!(r.status, 404);
        // and the name can be re-registered by anyone afterwards
        let r = ows.dispatch(&put("/topic/gone", &token, Value::Null));
        assert_eq!(r.status, 200);
    }

    #[test]
    fn only_owner_releases() {
        let (ows, token, _) = test_ows();
        ows.dispatch(&put("/topic/mine", &token, Value::Null));
        let auth = ows.auth.clone();
        let client = auth.register_client("sdk2", vec![]);
        auth.register_user("mallory@uchicago.edu", "pw").unwrap();
        let (mallory, _, _) = auth
            .login("mallory@uchicago.edu", "pw", client.id, vec![Scope::new(OWS_SCOPE)])
            .unwrap();
        let r = ows.dispatch(&Request::new(Method::Delete, "/topic/mine").bearer(mallory));
        assert_eq!(r.status, 403);
        assert!(ows.cluster().topic_exists("mine"));
    }

    #[test]
    fn dispatch_latency_lands_in_registry() {
        let (ows, token, _) = test_ows();
        ows.dispatch(&put("/topic/t", &token, Value::Null));
        ows.dispatch(&get("/topics", &token));
        // even rejected requests are timed
        ows.dispatch(&Request::new(Method::Get, "/topics"));
        let snap = ows.cluster().metrics().snapshot();
        assert_eq!(snap.histograms["octopus_stage_ows_dispatch_ns"].count(), 3);
    }

    #[test]
    fn metrics_endpoint_serves_parseable_exposition() {
        let (ows, token, _) = test_ows();
        ows.dispatch(&put("/topic/t", &token, Value::Null));
        // unauthenticated scrapes are rejected like any other route
        assert_eq!(ows.dispatch(&Request::new(Method::Get, "/metrics")).status, 401);
        let r = ows.dispatch(&get("/metrics", &token));
        assert_eq!(r.status, 200);
        assert_eq!(r.content_type, crate::http::CONTENT_TYPE_PROMETHEUS);
        let text = r.text_body().expect("text body");
        let samples = octopus_types::parse_exposition(text).expect("spec-clean exposition");
        assert!(
            samples.iter().any(|s| s.name == "octopus_stage_ows_dispatch_ns"),
            "dispatch latency must be scrapeable"
        );
    }

    #[test]
    fn health_endpoint_reports_cluster_rollup() {
        let (ows, token, _) = test_ows();
        ows.dispatch(&put("/topic/t", &token, json!({"replication_factor": 2})));
        let r = ows.dispatch(&get("/health", &token));
        assert_eq!(r.status, 200, "{:?}", r.body);
        assert_eq!(r.body["status"], "Green");
        assert_eq!(r.body["brokers"].as_array().unwrap().len(), 2);
        // kill a broker through the cluster handle: the next probe goes
        // yellow (rf=2 partitions lose a replica but stay writable)
        ows.cluster().kill_broker(octopus_broker::BrokerId(1)).unwrap();
        let r = ows.dispatch(&get("/health", &token));
        assert_eq!(r.body["status"], "Yellow", "{:?}", r.body);
        assert!(!r.body["timeline"].as_array().unwrap().is_empty());
    }

    #[test]
    fn reassignments_endpoint_surfaces_progress() {
        let (ows, token, _) = test_ows();
        ows.dispatch(&put("/topic/t", &token, json!({"partitions": 1})));
        // nothing moved yet → empty list
        let r = ows.dispatch(&get("/reassignments", &token));
        assert_eq!(r.status, 200, "{:?}", r.body);
        assert_eq!(r.body, json!([]));

        // move partition 0 off its leader onto a freshly joined broker
        let c = ows.cluster();
        for i in 0..8u8 {
            c.produce(
                "t",
                octopus_types::Event::from_bytes(vec![i]),
                octopus_broker::AckLevel::Leader,
            )
            .unwrap();
        }
        let from = c.leader_broker("t", 0).unwrap();
        let to = c.add_broker().unwrap();
        c.alter_partition_assignment(
            "t",
            0,
            from,
            to,
            &octopus_broker::MoveThrottle::unlimited(),
        )
        .unwrap();

        let r = ows.dispatch(&get("/reassignments", &token));
        assert_eq!(r.status, 200, "{:?}", r.body);
        assert_eq!(r.body[0]["topic"], "t");
        assert_eq!(r.body[0]["from"], from.0);
        assert_eq!(r.body[0]["to"], to.0);
        assert_eq!(r.body[0]["phase"], "Completed");
        assert_eq!(r.body[0]["copied"], 8);
        // observability routes still require authentication
        assert_eq!(ows.dispatch(&Request::new(Method::Get, "/reassignments")).status, 401);
    }

    #[test]
    fn store_endpoint_reports_durability() {
        // the default test deployment is volatile
        let (ows, token, _) = test_ows();
        let r = ows.dispatch(&get("/store", &token));
        assert_eq!(r.status, 200, "{:?}", r.body);
        assert_eq!(r.body["durable"], false);
        // unauthenticated requests are rejected like any other route
        assert_eq!(ows.dispatch(&Request::new(Method::Get, "/store")).status, 401);
    }

    #[test]
    fn lag_endpoint_reports_group_backlog() {
        let (ows, token, _) = test_ows();
        ows.dispatch(&put("/topic/t", &token, json!({"partitions": 1})));
        let c = ows.cluster();
        for i in 0..5 {
            c.produce(
                "t",
                octopus_types::Event::from_bytes(vec![i]),
                octopus_broker::AckLevel::Leader,
            )
            .unwrap();
        }
        // unknown group → 404
        assert_eq!(ows.dispatch(&get("/lag/ghosts", &token)).status, 404);
        c.coordinator().commit_unchecked("g", "t", 0, 2);
        let r = ows.dispatch(&get("/lag/g", &token));
        assert_eq!(r.status, 200, "{:?}", r.body);
        assert_eq!(r.body["group"], "g");
        assert_eq!(r.body["total"], 3);
        assert_eq!(r.body["partitions"][0]["end"], 5);
        assert_eq!(r.body["partitions"][0]["committed"], 2);
    }

    #[test]
    fn rate_limiting_returns_429() {
        let (ows, token, _) = test_ows_with(OwsConfig { rate_limit: Some((0.001, 2.0)) });
        assert_eq!(ows.dispatch(&get("/topics", &token)).status, 200);
        assert_eq!(ows.dispatch(&get("/topics", &token)).status, 200);
        assert_eq!(ows.dispatch(&get("/topics", &token)).status, 429);
    }

    #[test]
    fn idempotent_retries_do_not_change_state() {
        let (ows, token, _) = test_ows();
        for _ in 0..3 {
            let r = ows.dispatch(&put("/topic/t", &token, json!({"partitions": 4})));
            assert_eq!(r.status, 200, "retried PUT must succeed: {:?}", r.body);
        }
        assert_eq!(ows.cluster().partition_count("t").unwrap(), 4);
        for _ in 0..3 {
            let r = ows.dispatch(&post("/topic/t/partitions", &token, json!({"partitions": 8})));
            assert_eq!(r.status, 200);
        }
        assert_eq!(ows.cluster().partition_count("t").unwrap(), 8);
    }
}
