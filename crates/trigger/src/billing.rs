//! Cost metering for the cloud-hosted deployment (§VII-C).
//!
//! The paper prices its AWS footprint: MSK brokers at $0.0456/hour
//! (minimum two nodes ≈ $70/month), data egress at $0.09/GB, and Lambda
//! at roughly "$10 for 1 M requests (128 MB memory with 5 s duration)".
//! [`CostModel`] reproduces those figures; [`BillingMeter`] accumulates
//! actual usage so the `costs` bench binary can regenerate the paper's
//! worked example (a scheduling app invoking 2.4 M lambdas/day ≈
//! $24/day).

use serde::{Deserialize, Serialize};

/// Published prices used in the paper's cost analysis.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CostModel {
    /// Broker instance cost per hour (kafka.t3.small-class, §VII-C).
    pub broker_hour_usd: f64,
    /// Egress cost per GB from the fabric to remote consumers.
    pub egress_gb_usd: f64,
    /// Per-request Lambda price.
    pub lambda_request_usd: f64,
    /// Per GB-second Lambda compute price.
    pub lambda_gb_second_usd: f64,
}

impl Default for CostModel {
    fn default() -> Self {
        CostModel {
            broker_hour_usd: 0.0456,
            egress_gb_usd: 0.09,
            lambda_request_usd: 0.20 / 1e6,
            lambda_gb_second_usd: 0.0000166667,
        }
    }
}

impl CostModel {
    /// Cost of running `brokers` for `hours`.
    pub fn broker_cost(&self, brokers: u32, hours: f64) -> f64 {
        self.broker_hour_usd * brokers as f64 * hours
    }

    /// Cost of `bytes` of egress.
    pub fn egress_cost(&self, bytes: u64) -> f64 {
        self.egress_gb_usd * bytes as f64 / 1e9
    }

    /// Cost of one function invocation.
    pub fn invocation_cost(&self, memory_mb: u32, duration_ms: u64) -> f64 {
        let gb_seconds = (memory_mb as f64 / 1024.0) * (duration_ms as f64 / 1000.0);
        self.lambda_request_usd + self.lambda_gb_second_usd * gb_seconds
    }
}

/// Accumulates usage for one deployment.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct BillingMeter {
    invocations: u64,
    gb_seconds: f64,
    egress_bytes: u64,
}

impl BillingMeter {
    /// Fresh meter.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record a function invocation.
    pub fn record_invocation(&mut self, memory_mb: u32, duration_ms: u64) {
        self.invocations += 1;
        self.gb_seconds += (memory_mb as f64 / 1024.0) * (duration_ms as f64 / 1000.0);
    }

    /// Record egress bytes.
    pub fn record_egress(&mut self, bytes: u64) {
        self.egress_bytes += bytes;
    }

    /// Invocations so far.
    pub fn invocations(&self) -> u64 {
        self.invocations
    }

    /// Total cost under `model`, excluding broker standing costs.
    pub fn usage_cost(&self, model: &CostModel) -> f64 {
        model.lambda_request_usd * self.invocations as f64
            + model.lambda_gb_second_usd * self.gb_seconds
            + model.egress_cost(self.egress_bytes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_lambda_price_point() {
        // "$10 for 1 M requests (128 MB memory with 5 s duration)"
        let m = CostModel::default();
        let per_million = m.invocation_cost(128, 5_000) * 1e6;
        assert!(
            (9.0..=12.0).contains(&per_million),
            "1M invocations at 128MB/5s should be ~$10, got ${per_million:.2}"
        );
    }

    #[test]
    fn paper_msk_minimum_monthly() {
        // "minimum of two nodes ... minimum monthly cost of ~$70"
        let m = CostModel::default();
        let monthly = m.broker_cost(2, 30.0 * 24.0);
        assert!((60.0..=75.0).contains(&monthly), "got ${monthly:.2}");
    }

    #[test]
    fn paper_scheduling_example_24_usd_per_day() {
        // "10,000 events per hour for each of 10 resources would invoke
        // 10,000×10×24 = 2.4 M lambdas per day, which if using a 5 s
        // trigger and 4 KB events, costs $24 daily"
        let m = CostModel::default();
        // 2.4M record_invocation calls would be wasteful in a test:
        // set the aggregates directly (record_invocation is covered by
        // `meter_accumulates`).
        let mut meter = BillingMeter::new();
        meter.invocations = 2_400_000;
        meter.gb_seconds = 2_400_000.0 * (128.0 / 1024.0) * 5.0;
        meter.record_egress(2_400_000 * 4096); // 4 KB events
        let daily = meter.usage_cost(&m);
        assert!((20.0..=30.0).contains(&daily), "expected ~$24/day, got ${daily:.2}");
        // egress is "negligible" per the paper
        let egress = m.egress_cost(2_400_000 * 4096);
        assert!(egress < 1.0, "egress ${egress:.2} should be negligible");
    }

    #[test]
    fn meter_accumulates() {
        let mut meter = BillingMeter::new();
        meter.record_invocation(128, 1000);
        meter.record_invocation(256, 500);
        assert_eq!(meter.invocations(), 2);
        let m = CostModel::default();
        let expected = m.lambda_request_usd * 2.0
            + m.lambda_gb_second_usd * (128.0 / 1024.0 + 256.0 / 1024.0 * 0.5);
        assert!((meter.usage_cost(&m) - expected).abs() < 1e-12);
    }

    #[test]
    fn zero_usage_costs_nothing() {
        assert_eq!(BillingMeter::new().usage_cost(&CostModel::default()), 0.0);
    }
}
