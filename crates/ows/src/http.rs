//! A minimal in-process HTTP abstraction.
//!
//! OWS is a RESTful service in the paper; here the transport is a
//! function call, but the request/response shapes (method, path, bearer
//! token, JSON bodies, status codes) are kept so the route surface and
//! error mapping match a real deployment, and so the SDK exercises the
//! same code paths a remote client would.

use serde_json::Value;

use octopus_auth::AccessToken;
use octopus_types::OctoError;

/// HTTP method.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Method {
    /// GET
    Get,
    /// PUT
    Put,
    /// POST
    Post,
    /// DELETE
    Delete,
}

/// An API request.
#[derive(Debug, Clone)]
pub struct Request {
    /// Method.
    pub method: Method,
    /// Path, e.g. `/topic/sdl.actions/partitions`.
    pub path: String,
    /// Bearer token from the `Authorization` header.
    pub bearer: Option<AccessToken>,
    /// JSON body (Null when absent).
    pub body: Value,
}

impl Request {
    /// Build a request.
    pub fn new(method: Method, path: impl Into<String>) -> Self {
        Request { method, path: path.into(), bearer: None, body: Value::Null }
    }

    /// Attach a bearer token.
    pub fn bearer(mut self, token: AccessToken) -> Self {
        self.bearer = Some(token);
        self
    }

    /// Attach a JSON body.
    pub fn body(mut self, body: Value) -> Self {
        self.body = body;
        self
    }
}

/// Content type of a JSON response body.
pub const CONTENT_TYPE_JSON: &str = "application/json";
/// Content type of a Prometheus text exposition body (the version
/// suffix is part of the scrape contract).
pub const CONTENT_TYPE_PROMETHEUS: &str = "text/plain; version=0.0.4";

/// An API response.
#[derive(Debug, Clone, PartialEq)]
pub struct Response {
    /// HTTP status code.
    pub status: u16,
    /// JSON body (for text responses, a JSON string holding the text).
    pub body: Value,
    /// `Content-Type` header value.
    pub content_type: &'static str,
}

impl Response {
    /// 200 with a body.
    pub fn ok(body: Value) -> Self {
        Response { status: 200, body, content_type: CONTENT_TYPE_JSON }
    }

    /// 200 with a plain-text body (the `/metrics` exposition).
    pub fn text(body: String) -> Self {
        Response {
            status: 200,
            body: Value::String(body),
            content_type: CONTENT_TYPE_PROMETHEUS,
        }
    }

    /// The body as text, for text-typed responses.
    pub fn text_body(&self) -> Option<&str> {
        self.body.as_str()
    }

    /// Map an [`OctoError`] onto an HTTP status, RFC-7807 style body.
    pub fn from_error(e: &OctoError) -> Self {
        let status = match e {
            OctoError::Unauthenticated(_) => 401,
            OctoError::Unauthorized(_) => 403,
            OctoError::UnknownTopic(_)
            | OctoError::UnknownPartition(..)
            | OctoError::NotFound(_) => 404,
            OctoError::TopicExists(_) | OctoError::Conflict(_) => 409,
            OctoError::Invalid(_) | OctoError::Serde(_) => 400,
            OctoError::RateLimited(_) => 429,
            OctoError::Unavailable(_)
            | OctoError::Timeout(_)
            | OctoError::NotEnoughReplicas { .. } => 503,
            _ => 500,
        };
        Response {
            status,
            body: serde_json::json!({ "error": e.to_string() }),
            content_type: CONTENT_TYPE_JSON,
        }
    }

    /// Whether the status is 2xx.
    pub fn is_success(&self) -> bool {
        (200..300).contains(&self.status)
    }
}

/// Split a path into segments, ignoring leading/trailing slashes.
pub fn segments(path: &str) -> Vec<&str> {
    path.split('/').filter(|s| !s.is_empty()).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use serde_json::json;

    #[test]
    fn request_builder() {
        let r = Request::new(Method::Put, "/topic/t")
            .bearer(AccessToken("at_x".into()))
            .body(json!({"partitions": 4}));
        assert_eq!(r.method, Method::Put);
        assert_eq!(r.bearer.as_ref().unwrap().as_str(), "at_x");
        assert_eq!(r.body["partitions"], 4);
    }

    #[test]
    fn error_status_mapping() {
        assert_eq!(Response::from_error(&OctoError::Unauthenticated("x".into())).status, 401);
        assert_eq!(Response::from_error(&OctoError::Unauthorized("x".into())).status, 403);
        assert_eq!(Response::from_error(&OctoError::UnknownTopic("t".into())).status, 404);
        assert_eq!(Response::from_error(&OctoError::TopicExists("t".into())).status, 409);
        assert_eq!(Response::from_error(&OctoError::Invalid("x".into())).status, 400);
        assert_eq!(Response::from_error(&OctoError::RateLimited("x".into())).status, 429);
        assert_eq!(Response::from_error(&OctoError::Unavailable("x".into())).status, 503);
        assert_eq!(Response::from_error(&OctoError::Internal("x".into())).status, 500);
        assert!(!Response::from_error(&OctoError::Internal("x".into())).is_success());
        assert!(Response::ok(Value::Null).is_success());
    }

    #[test]
    fn text_response_shape() {
        let r = Response::text("octopus_up 1\n".into());
        assert_eq!(r.status, 200);
        assert_eq!(r.content_type, CONTENT_TYPE_PROMETHEUS);
        assert_eq!(r.text_body(), Some("octopus_up 1\n"));
        assert!(r.is_success());
        // JSON responses have no text body
        assert_eq!(Response::ok(json!({"a": 1})).text_body(), None);
    }

    #[test]
    fn path_segments() {
        assert_eq!(segments("/topic/t/partitions"), vec!["topic", "t", "partitions"]);
        assert_eq!(segments("/topics"), vec!["topics"]);
        assert_eq!(segments("/trigger/"), vec!["trigger"]);
        assert!(segments("/").is_empty());
    }
}
