//! Queueing resources: a bank of identical servers with FIFO admission.
//!
//! Broker CPU capacity is modelled as `c` servers (one per vCPU). A
//! request submitted at time `t` with service demand `s` begins service
//! on the earliest-free server and completes at `max(t, free) + s`. This
//! G/G/c queue is what turns offered load into the latency/throughput
//! curves of Fig. 3: below saturation latency is flat, near saturation
//! queueing delay dominates.

use std::collections::BinaryHeap;

use crate::time::{SimDuration, SimTime};

/// A bank of `c` identical FIFO servers.
#[derive(Debug, Clone)]
pub struct ServerQueue {
    // Min-heap of next-free times (stored negated via Reverse ordering).
    free_at: BinaryHeap<std::cmp::Reverse<SimTime>>,
    servers: usize,
    busy_time: SimDuration,
    completed: u64,
}

impl ServerQueue {
    /// A queue with `servers` parallel servers. Panics if zero.
    pub fn new(servers: usize) -> Self {
        assert!(servers > 0, "ServerQueue needs at least one server");
        let mut free_at = BinaryHeap::with_capacity(servers);
        for _ in 0..servers {
            free_at.push(std::cmp::Reverse(SimTime::ZERO));
        }
        ServerQueue { free_at, servers, busy_time: SimDuration::ZERO, completed: 0 }
    }

    /// Number of servers.
    pub fn servers(&self) -> usize {
        self.servers
    }

    /// Submit work arriving at `now` with service demand `service`;
    /// returns the completion time.
    pub fn submit(&mut self, now: SimTime, service: SimDuration) -> SimTime {
        let std::cmp::Reverse(free) = self.free_at.pop().expect("server heap non-empty");
        let start = if free > now { free } else { now };
        let done = start + service;
        self.free_at.push(std::cmp::Reverse(done));
        self.busy_time = self.busy_time + service;
        self.completed += 1;
        done
    }

    /// Earliest time any server is free.
    pub fn next_free(&self) -> SimTime {
        self.free_at.peek().map(|std::cmp::Reverse(t)| *t).unwrap_or(SimTime::ZERO)
    }

    /// Total service time accumulated (for utilization computation).
    pub fn busy_time(&self) -> SimDuration {
        self.busy_time
    }

    /// Requests completed.
    pub fn completed(&self) -> u64 {
        self.completed
    }

    /// Utilization over the horizon `[0, end]`: busy time divided by
    /// total server-time.
    pub fn utilization(&self, end: SimTime) -> f64 {
        if end == SimTime::ZERO {
            return 0.0;
        }
        self.busy_time.as_secs_f64() / (end.as_secs_f64() * self.servers as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_server_serializes() {
        let mut q = ServerQueue::new(1);
        let d = SimDuration::from_millis(10);
        let c1 = q.submit(SimTime::ZERO, d);
        let c2 = q.submit(SimTime::ZERO, d);
        let c3 = q.submit(SimTime::ZERO, d);
        assert_eq!(c1.as_millis_f64(), 10.0);
        assert_eq!(c2.as_millis_f64(), 20.0);
        assert_eq!(c3.as_millis_f64(), 30.0);
    }

    #[test]
    fn parallel_servers_run_concurrently() {
        let mut q = ServerQueue::new(2);
        let d = SimDuration::from_millis(10);
        let c1 = q.submit(SimTime::ZERO, d);
        let c2 = q.submit(SimTime::ZERO, d);
        let c3 = q.submit(SimTime::ZERO, d);
        assert_eq!(c1.as_millis_f64(), 10.0);
        assert_eq!(c2.as_millis_f64(), 10.0);
        assert_eq!(c3.as_millis_f64(), 20.0);
    }

    #[test]
    fn idle_arrival_starts_immediately() {
        let mut q = ServerQueue::new(1);
        q.submit(SimTime::ZERO, SimDuration::from_millis(5));
        // arrives long after the backlog drained
        let c = q.submit(SimTime::ZERO + SimDuration::from_secs(10), SimDuration::from_millis(5));
        assert_eq!(c.as_millis_f64(), 10_005.0);
    }

    #[test]
    fn utilization_accounting() {
        let mut q = ServerQueue::new(2);
        q.submit(SimTime::ZERO, SimDuration::from_secs(1));
        q.submit(SimTime::ZERO, SimDuration::from_secs(1));
        // 2 server-seconds of work over a 2-second horizon with 2 servers = 50%
        assert!((q.utilization(SimTime::from_secs_f64(2.0)) - 0.5).abs() < 1e-9);
        assert_eq!(q.completed(), 2);
    }

    #[test]
    #[should_panic(expected = "at least one")]
    fn zero_servers_rejected() {
        ServerQueue::new(0);
    }
}
