#!/usr/bin/env bash
# Tier-1 CI gate: build, test, lint.
#
# Usage: scripts/ci.sh
# Runs from the repo root regardless of the caller's cwd.

set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo build --release"
cargo build --release

echo "==> cargo test --release -q"
cargo test --release -q

echo "==> cargo clippy (workspace)"
cargo clippy --release --no-deps --workspace -- -D warnings

echo "==> cargo doc (warnings are errors)"
RUSTDOCFLAGS="-D warnings" cargo doc --no-deps --workspace -q

echo "==> observatory smoke (health/lag/SLO/trace export)"
cargo run --release -q --example observatory
test -s results/trace.json

echo "==> crash-recovery smoke (produce -> power loss -> cold reopen -> verify)"
cargo run --release -q --example durability_smoke

echo "==> temp-dir leak gate"
# Every durable-store test and example works in a TempDir prefixed
# octopus-data-*; anything still present here leaked.
leaked=$(find "${TMPDIR:-/tmp}" -maxdepth 1 -name 'octopus-data-*' 2>/dev/null || true)
if [ -n "$leaked" ]; then
    echo "leaked data dirs:" >&2
    echo "$leaked" >&2
    exit 1
fi

echo "==> ci green"
