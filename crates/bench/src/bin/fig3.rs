//! Regenerates **Fig. 3**: median and 99th-percentile producer latency
//! vs throughput for configurations 1–6 on the baseline cluster with
//! remote producers (20–100 producers per curve).
//!
//! `cargo run --release -p octopus-bench --bin fig3 [-- seed]`

use std::time::{Duration, Instant};

use octopus_bench::{bar, figure_header, human_rate, stage_table, write_result};
use octopus_broker::{AckLevel, Cluster, TopicConfig};
use octopus_fabric::experiments::fig3;
use octopus_fabric::Calibration;
use octopus_sdk::{Consumer, ConsumerConfig, Producer, ProducerConfig};
use octopus_types::Event;

/// A live (threaded, non-simulated) produce/consume pass over an
/// instrumented cluster: 1KB events at acks=all through the SDK, so
/// every stage of the pipeline (produce→ack, append, replicate, fetch,
/// deliver) lands in the registry. Returns the per-stage breakdown.
fn live_stage_breakdown() -> String {
    const EVENTS: usize = 2_000;
    let cluster = Cluster::new(3);
    cluster
        .create_topic(
            "fig3-live",
            TopicConfig::default().with_partitions(2).with_replication(3).with_min_insync(2),
        )
        .expect("live topic");
    // zero linger: send_sync flushes immediately instead of paying the
    // 5ms batching delay per call
    let producer = Producer::new(
        cluster.clone(),
        ProducerConfig {
            acks: AckLevel::All,
            linger: Duration::ZERO,
            ..ProducerConfig::default()
        },
    );
    let payload = vec![0x42u8; 1024];
    for _ in 0..EVENTS {
        producer.send_sync("fig3-live", Event::from_bytes(payload.clone())).expect("send");
    }
    producer.close();

    let mut consumer = Consumer::new(
        cluster.clone(),
        ConsumerConfig { group: "fig3-live".into(), ..ConsumerConfig::default() },
    );
    consumer.subscribe(&["fig3-live"]).expect("subscribe");
    let mut seen = 0usize;
    let deadline = Instant::now() + Duration::from_secs(30);
    while seen < EVENTS && Instant::now() < deadline {
        seen += consumer.poll().map(|b| b.len()).unwrap_or(0);
    }
    consumer.close();
    stage_table(&cluster.metrics().snapshot())
}

fn main() {
    let seed: u64 = std::env::args().nth(1).and_then(|s| s.parse().ok()).unwrap_or(3);
    figure_header(
        "FIG. 3 — Latency vs throughput, configurations 1-6, remote producers",
        "Each curve sweeps 20, 40, 60, 80, 100 producers on the baseline cluster.",
    );
    let labels = [
        "cfg 1: 32B  acks=0 p=2",
        "cfg 2: 1KB  acks=0 p=2",
        "cfg 3: 1KB  acks=1 p=2",
        "cfg 4: 1KB  acks=all p=2",
        "cfg 5: 4KB  acks=0 p=2",
        "cfg 6: 1KB  acks=0 p=4",
    ];
    let curves = fig3(Calibration::default(), seed);
    let max_p99 = curves
        .iter()
        .flat_map(|(_, pts)| pts.iter().map(|p| p.p99_ms))
        .fold(0.0f64, f64::max);
    for (idx, points) in &curves {
        println!("\n{}", labels[(*idx - 1) as usize]);
        println!("{:>6} {:>12} {:>9} {:>9}  p99", "prods", "thru (ev/s)", "med ms", "p99 ms");
        for p in points {
            println!(
                "{:>6} {:>12} {:>9.1} {:>9.1}  {}",
                p.producers,
                human_rate(p.throughput_eps),
                p.median_ms,
                p.p99_ms,
                bar(p.p99_ms, max_p99, 30)
            );
        }
    }
    println!("\nreading: latency rises toward saturation; 32B events reach ~100x the 1KB event rate;");
    println!("acks=all shifts the whole curve up; extra partitions shift the knee right.");

    // Live instrumented pass: where the simulated end-to-end latency
    // above actually goes, stage by stage, on the threaded cluster.
    println!("\nper-stage breakdown (live cluster, 1KB events, acks=all):");
    let table = live_stage_breakdown();
    print!("{table}");
    match write_result("fig3_stages.txt", &table) {
        Ok(path) => println!("written to {}", path.display()),
        Err(e) => eprintln!("could not write results file: {e}"),
    }
}
