//! Criterion benches for the EventBridge pattern language: compile and
//! match costs across pattern complexity (trigger filtering is on the
//! hot path of every event, §IV-D).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use serde_json::json;

use octopus_pattern::Pattern;

fn patterns() -> Vec<(&'static str, serde_json::Value)> {
    vec![
        ("listing1_exact", json!({"event_type": ["created"]})),
        (
            "multi_field",
            json!({"event_type": ["created", "modified"], "fs": ["pfs0"], "size": [{"numeric": [">", 0]}]}),
        ),
        (
            "string_ops",
            json!({"path": [{"prefix": "/pfs/"}, {"suffix": ".h5"}], "event_type": [{"anything-but": "deleted"}]}),
        ),
        (
            "nested_or",
            json!({"$or": [
                {"detail": {"state": ["failed"], "node": {"rack": [{"numeric": [">=", 0, "<", 64]}]}}},
                {"event_type": [{"wildcard": "transfer_*"}]}
            ]}),
        ),
    ]
}

fn event() -> serde_json::Value {
    json!({
        "event_type": "created",
        "path": "/pfs/exp42/jobs/run-000133/out-0042.h5",
        "fs": "pfs0",
        "size": 67108864,
        "timestamp_ms": 1720000000000u64,
        "detail": {"state": "ok", "node": {"rack": 12}}
    })
}

fn compile(c: &mut Criterion) {
    let mut group = c.benchmark_group("pattern_compile");
    for (name, doc) in patterns() {
        group.bench_function(BenchmarkId::from_parameter(name), |b| {
            b.iter(|| Pattern::parse(&doc).unwrap());
        });
    }
    group.finish();
}

fn matching(c: &mut Criterion) {
    let mut group = c.benchmark_group("pattern_match");
    group.throughput(Throughput::Elements(1));
    let ev = event();
    for (name, doc) in patterns() {
        let pat = Pattern::parse(&doc).unwrap();
        group.bench_function(BenchmarkId::from_parameter(name), |b| {
            b.iter(|| pat.matches(&ev));
        });
    }
    group.finish();
}

fn match_from_bytes(c: &mut Criterion) {
    // the trigger path: raw payload bytes -> parse -> match
    let bytes = serde_json::to_vec(&event()).unwrap();
    let pat = Pattern::parse(&json!({"event_type": ["created"]})).unwrap();
    let mut group = c.benchmark_group("pattern_match_bytes");
    group.throughput(Throughput::Bytes(bytes.len() as u64));
    group.bench_function("listing1", |b| {
        b.iter(|| pat.matches_bytes(&bytes));
    });
    group.finish();
}

criterion_group!(benches, compile, matching, match_from_bytes);
criterion_main!(benches);
